"""Tests for the coordinator tree and the Cosmos middleware end to end."""

import pytest

from repro.core import Cosmos, CosmosConfig, build_coordinator_tree
from repro.experiments.config import bench_scale, build_testbed
from repro.query.workload import WorkloadParams, generate_workload
from repro.topology import (
    LatencyOracle,
    TransitStubParams,
    generate_transit_stub,
    select_roles,
)


@pytest.fixture(scope="module")
def env():
    topo = generate_transit_stub(
        TransitStubParams(transit_domains=2, transit_nodes=3,
                          stubs_per_transit_node=3, stub_nodes=4),
        seed=3,
    )
    oracle = LatencyOracle(topo)
    sources, processors = select_roles(topo, 5, 16, seed=4)
    workload = generate_workload(
        WorkloadParams(num_substreams=800, num_queries=300,
                       substreams_per_query=(10, 20)),
        sources, processors, seed=5,
    )
    return topo, oracle, sources, processors, workload


class TestCoordinatorTree:
    def test_covers_all_processors(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        assert sorted(tree.root.descendants()) == sorted(processors)

    def test_leaf_cluster_sizes(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        for leaf in tree.leaf_clusters():
            assert 1 <= leaf.size() <= 3 * 4 - 1

    def test_parent_is_median_of_members(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        for leaf in tree.leaf_clusters():
            assert leaf.coordinator == oracle.median(leaf.members)

    def test_smaller_k_taller_tree(self, env):
        _, oracle, _, processors, _ = env
        t2 = build_coordinator_tree(processors, oracle, k=2)
        t8 = build_coordinator_tree(processors, oracle, k=8)
        assert t2.height() >= t8.height()

    def test_levels_consistent(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        levels = tree.levels()
        assert levels[-1] == [tree.root]

    def test_k_below_two_rejected(self, env):
        _, oracle, _, processors, _ = env
        with pytest.raises(ValueError):
            build_coordinator_tree(processors, oracle, k=1)

    def test_incremental_join(self, env):
        topo, oracle, sources, processors, _ = env
        tree = build_coordinator_tree(processors[:-1], oracle, k=4)
        newcomer = processors[-1]
        tree.join(newcomer)
        assert newcomer in tree.root.descendants()

    def test_join_splits_oversized_cluster(self, env):
        topo, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors[:4], oracle, k=2)
        for node in processors[4:12]:
            tree.join(node)
        for leaf in tree.leaf_clusters():
            assert leaf.size() <= 3 * 2 - 1

    def test_cluster_of_processor(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        leaf = tree.cluster_of_processor(processors[0])
        assert processors[0] in leaf.members


class TestCosmosDistribution:
    @pytest.fixture(scope="class")
    def cosmos_env(self, env):
        _, oracle, _, processors, workload = env
        cosmos = Cosmos(
            oracle, processors, workload.space,
            CosmosConfig(k=4, vmax=40),
        )
        placement = cosmos.distribute(workload.queries)
        return cosmos, placement, workload, processors

    def test_every_query_placed(self, cosmos_env):
        _, placement, workload, _ = cosmos_env
        assert set(placement) == {q.query_id for q in workload.queries}

    def test_placement_targets_are_processors(self, cosmos_env):
        _, placement, _, processors = cosmos_env
        assert set(placement.values()) <= set(processors)

    def test_load_within_reasonable_bounds(self, cosmos_env):
        _, placement, workload, processors = cosmos_env
        loads = {p: 0.0 for p in processors}
        for q in workload.queries:
            loads[placement[q.query_id]] += q.load
        mean = sum(loads.values()) / len(processors)
        # hierarchical slack: each level allows alpha, so allow 2x mean
        assert max(loads.values()) <= 2.0 * mean

    def test_beats_naive_on_cost(self, env, cosmos_env):
        from repro.baselines import naive_placement
        from repro.sim import CostModel

        _, oracle, _, _, _ = env
        cosmos, placement, workload, processors = cosmos_env
        cm = CostModel.over(None, workload.space, distance=oracle)
        cost_cosmos = cm.weighted_cost(placement, workload.queries)
        cost_naive = cm.weighted_cost(
            naive_placement(workload.queries), workload.queries
        )
        # this fixture is deliberately tiny (300 queries, 16 processors),
        # where sharing gains are marginal; the figure-scale comparison
        # lives in benchmarks/bench_fig6.py.  Allow 5% tolerance here.
        assert cost_cosmos < cost_naive * 1.05

    def test_timers_populated(self, cosmos_env):
        cosmos, _, _, _ = cosmos_env
        assert cosmos.total_time() > 0
        assert cosmos.response_time() <= cosmos.total_time() + 1e-9


class TestCosmosInsertAdapt:
    def test_insert_places_on_processor(self, env):
        _, oracle, _, processors, workload = env
        cosmos = Cosmos(oracle, processors, workload.space,
                        CosmosConfig(k=4, vmax=40))
        cosmos.distribute(workload.queries)
        fresh = workload.new_queries(10, processors)
        for q in fresh:
            host = cosmos.insert(q)
            assert host in processors
            assert cosmos.placement[q.query_id] == host

    def test_adapt_preserves_placement_completeness(self, env):
        _, oracle, _, processors, workload = env
        cosmos = Cosmos(oracle, processors, workload.space,
                        CosmosConfig(k=4, vmax=40))
        cosmos.distribute(workload.queries)
        before = set(cosmos.placement)
        report = cosmos.adapt()
        assert set(cosmos.placement) == before
        assert report.migrated_queries >= 0

    def test_adopt_reproduces_given_placement(self, env):
        _, oracle, _, processors, workload = env
        from repro.baselines import random_placement

        cosmos = Cosmos(oracle, processors, workload.space,
                        CosmosConfig(k=4, vmax=40))
        pl = random_placement(workload.queries, processors, seed=8)
        cosmos.adopt(workload.queries, pl)
        assert dict(cosmos.placement) == pl

    def test_adapt_after_adopt_improves_cost(self, env):
        from repro.baselines import random_placement
        from repro.sim import CostModel

        _, oracle, _, processors, workload = env
        cosmos = Cosmos(oracle, processors, workload.space,
                        CosmosConfig(k=4, vmax=40))
        pl = random_placement(workload.queries, processors, seed=8)
        cosmos.adopt(workload.queries, pl)
        cm = CostModel.over(None, workload.space, distance=oracle)
        before = cm.weighted_cost(pl, workload.queries)
        for _ in range(3):
            cosmos.adapt()
        after = cm.weighted_cost(dict(cosmos.placement), workload.queries)
        assert after < before

    def test_refresh_statistics_updates_weights(self, env):
        _, oracle, _, processors, workload = env
        cosmos = Cosmos(oracle, processors, workload.space,
                        CosmosConfig(k=4, vmax=40))
        cosmos.distribute(workload.queries)
        workload.space.perturb_rates(list(range(50)), 5.0)
        cosmos.refresh_statistics(workload)
        root_total = sum(v.weight for v in cosmos.root.vertices.values())
        assert root_total == pytest.approx(
            sum(q.load for q in workload.queries), rel=0.01
        )
        workload.space.perturb_rates(list(range(50)), 0.2)
        cosmos.refresh_statistics(workload)

    def test_single_processor_system(self, env):
        _, oracle, _, processors, workload = env
        cosmos = Cosmos(oracle, processors[:1], workload.space,
                        CosmosConfig(k=4, vmax=40))
        placement = cosmos.distribute(workload.queries[:20])
        assert set(placement.values()) == {processors[0]}


class TestTreeLeave:
    """Processor departure from the coordinator hierarchy."""

    def test_leave_removes_processor(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        tree.leave(processors[0])
        assert processors[0] not in tree.root.descendants()
        assert sorted(tree.root.descendants()) == sorted(processors[1:])
        for leaf in tree.leaf_clusters():
            assert leaf.coordinator == oracle.median(leaf.members)

    def test_leave_refreshes_internal_medians(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=2)
        # remove a leaf coordinator so its parent's member list must change
        victim = tree.leaf_clusters()[0].coordinator
        tree.leave(victim)
        for level in tree.levels()[1:]:
            for cluster in level:
                assert cluster.members == [
                    c.coordinator for c in cluster.children
                ]
                assert cluster.coordinator == oracle.median(cluster.members)

    def test_emptied_leaf_is_pruned(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=2)
        doomed = list(tree.leaf_clusters()[0].members)
        for node in doomed:
            tree.leave(node)
        assert all(leaf.members for leaf in tree.leaf_clusters())
        expected = sorted(set(processors) - set(doomed))
        assert sorted(tree.root.descendants()) == expected

    def test_join_then_leave_restores_membership(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors[:-1], oracle, k=4)
        newcomer = processors[-1]
        tree.join(newcomer)
        tree.leave(newcomer)
        assert sorted(tree.root.descendants()) == sorted(processors[:-1])

    def test_last_processor_rejected(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors[:1], oracle, k=4)
        with pytest.raises(ValueError):
            tree.leave(processors[0])

    def test_unknown_processor_rejected(self, env):
        _, oracle, _, processors, _ = env
        tree = build_coordinator_tree(processors, oracle, k=4)
        with pytest.raises(KeyError):
            tree.leave(-17)


class TestElasticMembership:
    """Runtime processor add/remove through the Cosmos facade."""

    def _fresh(self, env, procs=None):
        _, oracle, _, processors, workload = env
        procs = processors if procs is None else procs
        cosmos = Cosmos(oracle, procs, workload.space,
                        CosmosConfig(k=4, vmax=40))
        cosmos.distribute(workload.queries)
        return cosmos, workload

    def test_remove_processor_orphans_its_queries(self, env):
        _, _, _, processors, _ = env
        cosmos, workload = self._fresh(env)
        hosts = set(cosmos.placement.values())
        victim = sorted(hosts)[0]
        expected = sorted(
            q for q, h in cosmos.placement.items() if h == victim
        )
        orphans = cosmos.remove_processor(victim)
        assert orphans == expected
        assert victim not in cosmos.processors
        assert victim not in set(cosmos.placement.values())
        for q in orphans:
            assert q not in cosmos.placement
        # survivors keep their placement verbatim
        survivors = {q for q in cosmos.placement}
        assert survivors == {
            q.query_id for q in workload.queries
        } - set(orphans)

    def test_orphans_reinsert_onto_survivors(self, env):
        cosmos, workload = self._fresh(env)
        victim = sorted(set(cosmos.placement.values()))[0]
        orphans = cosmos.remove_processor(victim)
        specs = {q.query_id: q for q in workload.queries}
        for qid in orphans:
            host = cosmos.insert(specs[qid])
            assert host in cosmos.processors
            assert cosmos.placement[qid] == host

    def test_add_processor_becomes_placeable(self, env):
        _, _, _, processors, _ = env
        cosmos, workload = self._fresh(env, procs=processors[:-1])
        before = dict(cosmos.placement)
        newcomer = processors[-1]
        cosmos.add_processor(newcomer)
        assert newcomer in cosmos.processors
        assert newcomer in cosmos.tree.root.descendants()
        assert dict(cosmos.placement) == before, "join must not move queries"
        fresh = workload.new_queries(20, cosmos.processors)
        hosts = {cosmos.insert(q) for q in fresh}
        assert hosts <= set(cosmos.processors)
        cosmos.adapt()  # hierarchy stays functional after the rebuild

    def test_duplicate_add_rejected(self, env):
        _, _, _, processors, _ = env
        cosmos, _ = self._fresh(env)
        with pytest.raises(ValueError):
            cosmos.add_processor(processors[0])

    def test_membership_ops_deterministic(self, env):
        _, oracle, _, processors, workload = env

        def run():
            cosmos = Cosmos(oracle, processors, workload.space,
                            CosmosConfig(k=4, vmax=40))
            cosmos.distribute(workload.queries)
            victim = sorted(set(cosmos.placement.values()))[0]
            orphans = cosmos.remove_processor(victim)
            specs = {q.query_id: q for q in workload.queries}
            for qid in orphans:
                cosmos.insert(specs[qid])
            cosmos.adapt()
            return dict(cosmos.placement)

        assert run() == run()


class TestCosmosRemoval:
    """Query departure (the churn counterpart of online insertion)."""

    def _fresh(self, env, vmax=40, n=None):
        _, oracle, _, processors, workload = env
        cosmos = Cosmos(oracle, processors, workload.space,
                        CosmosConfig(k=4, vmax=vmax))
        queries = workload.queries if n is None else workload.queries[:n]
        cosmos.distribute(queries)
        return cosmos, queries

    def test_remove_clears_placement_and_vertices(self, env):
        cosmos, queries = self._fresh(env)
        victim = queries[7].query_id
        assert cosmos.remove(victim)
        assert victim not in cosmos.placement
        for coord in cosmos.root.all_coordinators():
            for v in coord.vertices.values():
                assert victim not in v.members

    def test_remove_inside_coarse_vertex(self, env):
        # vmax far below the population forces coarse vertices at the root
        cosmos, queries = self._fresh(env, vmax=10)
        assert any(
            len(v.members) > 1 for v in cosmos.root.vertices.values()
        ), "expected coarse vertices at the root"
        victim = queries[3].query_id
        assert cosmos.remove(victim)
        for coord in cosmos.root.all_coordinators():
            for v in coord.vertices.values():
                assert victim not in v.members
                assert v.weight == pytest.approx(
                    sum(c.weight for c in v.children) if v.children else v.weight
                )

    def test_adapt_after_removal_keeps_query_gone(self, env):
        cosmos, queries = self._fresh(env, vmax=10)
        victims = [q.query_id for q in queries[:5]]
        for victim in victims:
            cosmos.remove(victim)
        cosmos.adapt()
        for victim in victims:
            assert victim not in cosmos.placement
        survivors = {q.query_id for q in queries} - set(victims)
        assert set(cosmos.placement) == survivors

    def test_insert_after_removal(self, env):
        _, oracle, _, processors, workload = env
        cosmos, queries = self._fresh(env)
        victim = queries[0].query_id
        cosmos.remove(victim)
        fresh = workload.new_queries(3, processors)
        for q in fresh:
            host = cosmos.insert(q)
            assert cosmos.placement[q.query_id] == host

    def test_remove_unknown_returns_false(self, env):
        cosmos, _ = self._fresh(env, n=20)
        assert not cosmos.remove(999999)
