"""Fault injection, recovery invariants & elastic membership (ISSUE 6).

The contract under test: scheduled faults (processor crashes, broker
losses, link partitions) and membership events (joins, graceful leaves)
run through the seeded event loop bit-reproducibly, and the default
checkpoint recovery policy restores the system to the documented
invariants:

* queries never hosted on a failed node lose **zero** results -- they
  stay exactly oracle-equal;
* queries hosted on a crashed node lose at most the in-flight window --
  their results are a *subsequence* of the oracle's, and once the lost
  window has aged out past the recovery point they are at **full
  parity** again;
* graceful membership changes (join/leave) lose nothing at all;
* the ``none`` recovery baseline is demonstrably worse than
  ``checkpoint``.

All of it across batch/scalar data planes, shared/unshared execution
and indexed/reference routing.
"""

import json

import pytest

from repro.sim import (
    BrokerLoss,
    ChurnParams,
    HotSpotShift,
    LinkPartition,
    ProcessorCrash,
    ProcessorJoin,
    ProcessorLeave,
    ScenarioParams,
    SimWorkloadParams,
    is_subsequence,
    oracle_results,
    recovery_invariants,
    run_scenario,
)

# short windows so "lost window aged out" falls well inside the run and
# the post-recovery-parity clause of the invariant is NOT vacuous
WINDOW_RANGE = (2, 4)
WINDOW_S = float(WINDOW_RANGE[1])


def fault_workload(pool: int = 6, queries: int = 24) -> SimWorkloadParams:
    return SimWorkloadParams(
        num_substreams=40,
        num_queries=queries,
        pool_substreams=pool,
        window_range=WINDOW_RANGE,
    )


def fault_scenario(**overrides) -> ScenarioParams:
    base = dict(
        duration=20.0,
        sample_interval=4.0,
        adapt_interval=8.0,
        initial_placement="skewed",
        churn=ChurnParams(arrival_rate=0.4, mean_lifetime=10.0),
        faults=(ProcessorCrash(at=6.0),),
        recovery="checkpoint",
        checkpoint_interval=3.0,
    )
    base.update(overrides)
    return ScenarioParams(**base)


def trace_json(report) -> str:
    return json.dumps(report.trace.to_dict(), sort_keys=True)


def crashed_queries(report) -> set:
    """Every query id that was hosted on a crashed/lost node."""
    hit = set()
    for entry in report.fault_log:
        if entry["kind"] == "crash":
            hit.update(entry["queries"])
    return hit


def last_resumed_at(report):
    times = [
        e["resumed_at"]
        for e in report.fault_log
        if e["kind"] == "recover" and "resumed_at" in e
    ]
    return max(times) if times else None


def total_loss(report, oracle, affected) -> int:
    """Results the oracle produced for affected queries but the run lost."""
    return sum(
        len(oracle[q]) - len(report.results.get(q, []))
        for q in affected
        if q in oracle
    )


class TestCrashRecoveryInvariants:
    """ProcessorCrash + CheckpointRecovery across every plane combo."""

    @pytest.mark.parametrize("use_batches", [True, False])
    @pytest.mark.parametrize("use_sharing", [False, True])
    def test_bounded_loss_and_post_recovery_parity(
        self, use_batches, use_sharing
    ):
        report = run_scenario(
            seed=3,
            workload=fault_workload(),
            scenario=fault_scenario(
                use_batches=use_batches, use_sharing=use_sharing
            ),
            record=True,
        )
        oracle = oracle_results(report.actions)
        affected = crashed_queries(report)
        assert affected, "crash hit no hosted queries -- test is vacuous"
        resumed = last_resumed_at(report)
        assert resumed is not None, "recovery never ran"
        violations = recovery_invariants(
            report.results,
            oracle,
            affected=affected,
            resumed_at=resumed,
            window_s=WINDOW_S,
        )
        assert violations == []
        # the parity clause actually checked something: the oracle has
        # results for affected queries past the recovery horizon
        horizon = resumed + WINDOW_S
        checked = sum(
            1
            for q in affected
            for r in oracle.get(q, [])
            if r.get("timestamp", 0.0) > horizon
        )
        assert checked > 0, "post-recovery window empty -- shorten windows"

    @pytest.mark.parametrize("use_index", [True, False])
    def test_invariants_hold_on_both_routing_paths(self, use_index):
        """Indexed and reference routing agree under faults too."""
        report = run_scenario(
            seed=5,
            workload=fault_workload(),
            scenario=fault_scenario(use_index=use_index),
            record=True,
        )
        oracle = oracle_results(report.actions)
        affected = crashed_queries(report)
        assert affected
        violations = recovery_invariants(
            report.results,
            oracle,
            affected=affected,
            resumed_at=last_resumed_at(report),
            window_s=WINDOW_S,
        )
        assert violations == []

    def test_routing_paths_bit_identical_under_faults(self):
        """use_index only changes the matching machinery, never results."""
        runs = [
            run_scenario(
                seed=5,
                workload=fault_workload(),
                scenario=fault_scenario(use_index=flag),
                record=True,
            )
            for flag in (True, False)
        ]
        assert runs[0].results == runs[1].results
        assert runs[0].fault_log == runs[1].fault_log
        assert trace_json(runs[0]) == trace_json(runs[1])

    def test_untouched_queries_lose_nothing(self):
        report = run_scenario(
            seed=3,
            workload=fault_workload(),
            scenario=fault_scenario(),
            record=True,
        )
        oracle = oracle_results(report.actions)
        affected = crashed_queries(report)
        untouched = set(oracle) - affected
        assert untouched, "every query was hit -- zero-loss check vacuous"
        for qid in untouched:
            assert report.results.get(qid, []) == oracle[qid]

    def test_no_recovery_baseline_is_strictly_worse(self):
        """CheckpointRecovery must demonstrably beat doing nothing."""
        kwargs = dict(seed=3, workload=fault_workload(), record=True)
        rec = run_scenario(scenario=fault_scenario(), **kwargs)
        bare = run_scenario(
            scenario=fault_scenario(recovery="none"), **kwargs
        )
        # same crash either way
        assert crashed_queries(rec) == crashed_queries(bare)
        affected = crashed_queries(rec)
        oracle = oracle_results(rec.actions)
        loss_rec = total_loss(rec, oracle, affected)
        loss_bare = total_loss(bare, oracle, affected)
        assert loss_rec < loss_bare
        # even abandoned queries never corrupt or reorder: still subsequences
        for qid in affected:
            if qid in oracle:
                assert is_subsequence(bare.results.get(qid, []), oracle[qid])


class TestBrokerLossAndPartition:
    @pytest.mark.parametrize("use_sharing", [False, True])
    def test_broker_loss_recovery_restores_delivery(self, use_sharing):
        """A wiped broker's tables are refloodable: zero total loss."""
        report = run_scenario(
            seed=2,
            workload=fault_workload(),
            scenario=fault_scenario(
                faults=(BrokerLoss(at=7.0),),
                use_sharing=use_sharing,
            ),
            record=True,
        )
        kinds = [e["kind"] for e in report.fault_log]
        assert "broker_loss" in kinds and "recover" in kinds
        oracle = oracle_results(report.actions)
        # no engine died, so nothing is exempt: every query bounded,
        # and the reflood+resubscribe repair keeps loss transient
        for qid, want in oracle.items():
            assert is_subsequence(report.results.get(qid, []), want)

    def test_partition_drops_then_heals(self):
        report = run_scenario(
            seed=4,
            workload=fault_workload(),
            scenario=fault_scenario(
                faults=(LinkPartition(at=6.0, duration=3.0),),
            ),
            record=True,
        )
        kinds = [e["kind"] for e in report.fault_log]
        assert kinds.count("partition") == 1
        assert kinds.count("heal") == 1
        oracle = oracle_results(report.actions)
        for qid, want in oracle.items():
            assert is_subsequence(report.results.get(qid, []), want)

    def test_partition_is_deterministic(self):
        kwargs = dict(
            seed=4,
            workload=fault_workload(),
            scenario=fault_scenario(
                faults=(LinkPartition(at=6.0, duration=3.0),),
            ),
            record=True,
        )
        a, b = run_scenario(**kwargs), run_scenario(**kwargs)
        assert a.fault_log == b.fault_log
        assert a.results == b.results
        assert trace_json(a) == trace_json(b)


class TestElasticMembership:
    """Graceful join/leave under churn + hot spots loses nothing."""

    @pytest.mark.parametrize("use_sharing", [False, True])
    def test_join_leave_is_lossless(self, use_sharing):
        scenario = fault_scenario(
            faults=(ProcessorJoin(at=5.0), ProcessorLeave(at=11.0)),
            spare_processors=1,
            hotspot=HotSpotShift(at=9.0, substreams=8, factor=3.0),
            use_sharing=use_sharing,
        )
        report = run_scenario(
            seed=6, workload=fault_workload(), scenario=scenario,
            record=True,
        )
        kinds = [e["kind"] for e in report.fault_log]
        assert "join" in kinds and "leave" in kinds
        oracle = oracle_results(report.actions)
        # graceful migration: EVERY query stays exactly oracle-equal
        violations = recovery_invariants(
            report.results, oracle, affected=set()
        )
        assert violations == []

    @pytest.mark.parametrize("use_sharing", [False, True])
    def test_join_leave_is_deterministic(self, use_sharing):
        scenario = fault_scenario(
            faults=(ProcessorJoin(at=5.0), ProcessorLeave(at=11.0)),
            spare_processors=1,
            hotspot=HotSpotShift(at=9.0, substreams=8, factor=3.0),
            use_sharing=use_sharing,
        )
        kwargs = dict(
            seed=6, workload=fault_workload(), scenario=scenario,
            record=True,
        )
        a, b = run_scenario(**kwargs), run_scenario(**kwargs)
        assert a.fault_log == b.fault_log
        assert trace_json(a) == trace_json(b)
        assert a.results == b.results


class TestMixedFaultDeterminism:
    def test_mixed_fault_schedule_bit_identical(self):
        """Everything at once, twice: crashes, broker loss, partition,
        join, leave -- identical traces, logs and results."""
        scenario = fault_scenario(
            faults=(
                ProcessorJoin(at=3.0),
                ProcessorCrash(at=6.0),
                LinkPartition(at=8.0, duration=2.0),
                BrokerLoss(at=10.0),
                ProcessorLeave(at=13.0),
            ),
            spare_processors=2,
        )
        kwargs = dict(
            seed=9, workload=fault_workload(), scenario=scenario,
            record=True,
        )
        a, b = run_scenario(**kwargs), run_scenario(**kwargs)
        assert a.fault_log == b.fault_log
        assert trace_json(a) == trace_json(b)
        assert a.results == b.results
        # and the run still satisfies the loss bounds
        oracle = oracle_results(a.actions)
        affected = crashed_queries(a)
        violations = recovery_invariants(
            a.results,
            oracle,
            affected=affected,
            resumed_at=last_resumed_at(a),
            window_s=WINDOW_S,
        )
        assert violations == []

    def test_fault_free_runs_unaffected_by_fault_plumbing(self):
        """With no faults scheduled, the checkpoint machinery only adds
        its shipping cost -- it never changes what queries compute."""
        kwargs = dict(seed=1, workload=fault_workload(), record=True)
        plain = run_scenario(scenario=fault_scenario(faults=()), **kwargs)
        no_ckpt = run_scenario(
            scenario=fault_scenario(faults=(), checkpoint_interval=None),
            **kwargs,
        )
        assert plain.fault_log == [] and no_ckpt.fault_log == []
        assert plain.results == no_ckpt.results
        # checkpoint shipping is visible as extra control traffic only
        shipped = sum(s.control_bytes for s in plain.trace.samples)
        bare = sum(s.control_bytes for s in no_ckpt.trace.samples)
        assert shipped >= bare


class TestInvariantHelpers:
    def test_is_subsequence(self):
        assert is_subsequence([], [1, 2])
        assert is_subsequence([1, 3], [1, 2, 3])
        assert not is_subsequence([3, 1], [1, 2, 3])
        assert not is_subsequence([4], [1, 2, 3])

    def test_exact_violation_for_untouched_query(self):
        oracle = {1: [{"timestamp": 1.0}]}
        got = {1: []}
        assert recovery_invariants(got, oracle, affected=set()) == [
            (1, "exact")
        ]

    def test_subsequence_violation_for_affected_query(self):
        oracle = {1: [{"timestamp": 1.0}, {"timestamp": 2.0}]}
        got = {1: [{"timestamp": 2.0}, {"timestamp": 1.0}]}
        assert recovery_invariants(got, oracle, affected={1}) == [
            (1, "subsequence")
        ]

    def test_post_recovery_parity_violation(self):
        oracle = {1: [{"timestamp": 1.0}, {"timestamp": 9.0}]}
        got = {1: [{"timestamp": 1.0}]}
        assert recovery_invariants(
            got, oracle, affected={1}, resumed_at=2.0, window_s=4.0
        ) == [(1, "post_recovery_parity")]

    def test_bounded_loss_before_horizon_is_fine(self):
        oracle = {1: [{"timestamp": 1.0}, {"timestamp": 9.0}]}
        got = {1: [{"timestamp": 9.0}]}
        assert (
            recovery_invariants(
                got, oracle, affected={1}, resumed_at=2.0, window_s=4.0
            )
            == []
        )
