"""Forwarding-index parity and routing-table correctness regressions.

The counting index (``repro.pubsub.index``) must be observationally
identical to the reference scans it replaces: same forwarding sets, same
local deliveries in the same order, same per-link projections, same
traffic accounting -- under adds, unsubscribes, covering-based pruning
and ``force=True`` re-propagation.  These tests drive both paths with
the *same* Subscription objects and compare everything.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.scenarios import SyntheticOracle
from repro.pubsub import (
    Advertisement,
    Event,
    Filter,
    PubSubNetwork,
    Subscription,
)
from repro.pubsub.routing import LOCAL, RoutingTable
from repro.query.interest import SubstreamSpace
from repro.sim import ChurnParams, HotSpotShift, ScenarioParams, run_scenario
from repro.topology import OverlayTree
from repro.topology.overlay import minimum_latency_spanning_tree


def chain_tree(n):
    tree = OverlayTree(nodes=list(range(n)))
    for i in range(n - 1):
        tree.add_link(i, i + 1, 1.0)
    return tree


def table_pair():
    return RoutingTable(broker=0, use_index=True), RoutingTable(
        broker=0, use_index=False
    )


def normalized(deliveries):
    return [
        (node, sub.sub_id, tuple(sorted(ev.attributes.items())), ev.size)
        for node, ev, sub in deliveries
    ]


# ---------------------------------------------------------------------------
# RoutingTable-level parity
# ---------------------------------------------------------------------------


class TestTableParity:
    def apply_both(self, tables, op, *args):
        out = [getattr(t, op)(*args) for t in tables]
        assert out[0] == out[1], f"{op}{args} diverged"
        return out[0]

    def assert_same_answers(self, tables, event, ifaces=(None, LOCAL, 1, 2, 3)):
        indexed, reference = tables
        for via in ifaces:
            assert indexed.forwarding_interfaces(event, via) == (
                reference.forwarding_interfaces(event, via)
            )
        assert [s.sub_id for s in indexed.matching_local_subscriptions(event)] == [
            s.sub_id for s in reference.matching_local_subscriptions(event)
        ]
        for iface in ifaces[1:]:
            assert indexed.needed_attributes(event, iface) == (
                reference.needed_attributes(event, iface)
            )

    def test_operator_mix_parity(self):
        tables = table_pair()
        subs = [
            Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 10))),
            Subscription.to_streams(["R"], filter=Filter.of(("a", "<=", 5))),
            Subscription.to_streams(["R"], filter=Filter.of(("a", "==", 7))),
            Subscription.to_streams(
                ["R"], filter=Filter.of(("a", "in", frozenset([1, 2, 3])))
            ),
            Subscription.to_streams(["R"], filter=Filter.of(("a", "!=", 7))),
            Subscription.to_streams(
                ["R", "S"], filter=Filter.of(("a", ">=", 0), ("b", "<", 4))
            ),
            Subscription.to_streams(["S"]),  # stream-only
            Subscription.to_streams(  # unsatisfiable
                ["R"], filter=Filter.of(("a", "==", 1), ("a", "==", 2))
            ),
        ]
        for i, sub in enumerate(subs):
            via = [LOCAL, 1, 2][i % 3]
            self.apply_both(tables, "add_subscription", sub, via)
        for stream in ("R", "S", "T"):
            for a in (-1, 1, 5, 7, 11, None):
                for b in (2, 9, None):
                    attrs = {}
                    if a is not None:
                        attrs["a"] = a
                    if b is not None:
                        attrs["b"] = b
                    self.assert_same_answers(tables, Event(stream, attrs))

    def test_string_and_mixed_type_values_parity(self):
        tables = table_pair()
        subs = [
            Subscription.to_streams(["R"], filter=Filter.of(("s", "==", "x"))),
            Subscription.to_streams(["R"], filter=Filter.of(("s", "!=", "n"))),
            Subscription.to_streams(
                ["R"], filter=Filter.of(("s", "in", frozenset(["p", "q"])))
            ),
            # numeric range on one attr, string equality on another
            Subscription.to_streams(
                ["R"], filter=Filter.of(("a", ">", 1), ("s", "==", "p"))
            ),
        ]
        for sub in subs:
            self.apply_both(tables, "add_subscription", sub, LOCAL)
        for value in ("x", "m", "n", "p", 3):
            for a in (0, 2, None):
                attrs = {"s": value}
                if a is not None:
                    attrs["a"] = a
                self.assert_same_answers(tables, Event("R", attrs))

    def test_parity_after_remove_and_prune(self):
        tables = table_pair()
        narrow = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
        wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
        other = Subscription.to_streams(["R"], filter=Filter.of(("a", "<", -5)))
        self.apply_both(tables, "add_subscription", narrow, 1)
        self.apply_both(tables, "add_subscription", other, 1)
        # wide covers narrow -> prune must hit table and index alike
        self.apply_both(tables, "add_subscription", wide, 1)
        self.assert_same_answers(tables, Event("R", {"a": 7}))
        self.apply_both(tables, "remove_subscription", wide.sub_id, 1)
        self.assert_same_answers(tables, Event("R", {"a": 7}))
        self.apply_both(tables, "remove_subscription", other.sub_id)
        self.assert_same_answers(tables, Event("R", {"a": -7}))

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.integers(0, 3),  # interface selector
                st.integers(-5, 25),  # threshold
                st.sampled_from([">", ">=", "<", "<=", "==", "!="]),
            ),
            min_size=1,
            max_size=20,
        ),
        probes=st.lists(st.integers(-10, 30), min_size=1, max_size=8),
    )
    def test_random_op_sequences_parity(self, ops, probes):
        tables = table_pair()
        live = []
        for kind, iface_sel, threshold, op in ops:
            via = [LOCAL, 1, 2, 3][iface_sel]
            if kind == "add" or not live:
                sub = Subscription.to_streams(
                    ["R"], filter=Filter.of(("a", op, threshold))
                )
                self.apply_both(tables, "add_subscription", sub, via)
                live.append(sub)
            else:
                victim = live.pop(threshold % len(live))
                self.apply_both(tables, "remove_subscription", victim.sub_id)
        indexed, reference = tables
        assert indexed.size() == reference.size()
        for value in probes:
            self.assert_same_answers(tables, Event("R", {"a": value}))


# ---------------------------------------------------------------------------
# network-level randomized parity (seeded SubstreamSpace.random workload)
# ---------------------------------------------------------------------------


def build_parity_networks(seed, processors=24, subscriptions=160, substreams=48):
    rng = np.random.default_rng(seed)
    n_sources = 6
    sources = list(range(n_sources))
    procs = list(range(n_sources, n_sources + processors))
    oracle = SyntheticOracle(n_sources + processors, seed=seed)
    space = SubstreamSpace.random(substreams, sources, rng=rng)
    tree = minimum_latency_spanning_tree(sources + procs, oracle)
    nets = [
        PubSubNetwork(tree, use_index=use_index) for use_index in (True, False)
    ]
    for sid in range(len(space)):
        adv = Advertisement(stream=f"S{sid}")
        for net in nets:
            net.advertise(int(space.source_of[sid]), adv)
    installed = []
    for _ in range(subscriptions):
        node = procs[int(rng.integers(len(procs)))]
        sids = rng.choice(substreams, size=1 + int(rng.integers(2)), replace=False)
        draw = rng.random()
        if draw < 0.5:
            lo = int(rng.integers(0, 80))
            filt = Filter.of(("value", ">=", lo), ("value", "<", lo + 30))
        elif draw < 0.65:
            filt = Filter.of(
                ("value", "in",
                 frozenset(int(v) for v in rng.integers(0, 100, size=4))),
            )
        elif draw < 0.75:
            filt = Filter.of(("value", "!=", int(rng.integers(0, 100))))
        else:
            filt = Filter()
        projection = frozenset({"value"}) if rng.random() < 0.3 else None
        sub = Subscription.to_streams(
            [f"S{int(s)}" for s in sids], projection=projection, filter=filt
        )
        for net in nets:
            net.subscribe(node, sub)
        installed.append((node, sub))
    return nets, installed, space, rng


def publish_all(nets, space, rng, count=80):
    """Publish one identical random event batch through both networks."""
    substreams = len(space)
    for _ in range(count):
        sid = int(rng.integers(substreams))
        event = Event(
            stream=f"S{sid}",
            attributes={"value": int(rng.integers(0, 100))},
            size=1.0,
        )
        source = int(space.source_of[sid])
        yield [net.publish(source, event) for net in nets]


class TestNetworkParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_delivery_parity(self, seed):
        nets, _installed, space, rng = build_parity_networks(seed)
        for indexed, reference in publish_all(nets, space, rng):
            assert normalized(indexed) == normalized(reference)
        assert nets[0].link_bytes == nets[1].link_bytes

    def test_parity_through_unsubscribe_and_covering_repair(self):
        """The PR 2 covering-hole scenario: tear down subscriptions that
        covered others, repair with ``force=True``, and require parity on
        the re-propagated tables too."""
        nets, installed, space, rng = build_parity_networks(seed=3)
        victims = installed[::5]
        for _node, sub in victims:
            for net in nets:
                net.unsubscribe(sub.sub_id)
        survivors = [p for p in installed if p not in victims]
        assert survivors
        for node, sub in survivors[::3]:  # force-re-propagate survivors
            for net in nets:
                net.subscribe(node, sub, force=True)
        for node, broker in nets[0].brokers.items():
            assert broker.table.size() == nets[1].brokers[node].table.size()
        for indexed, reference in publish_all(nets, space, rng):
            assert normalized(indexed) == normalized(reference)

    def test_sim_trace_parity(self):
        """End to end: the simulator's delivered-tuple trace is bit-identical
        with the index on and off, churn and hot spots included."""
        base = dict(
            duration=18.0,
            sample_interval=4.0,
            adapt_interval=8.0,
            initial_placement="skewed",
            churn=ChurnParams(arrival_rate=0.4, mean_lifetime=9.0),
            hotspot=HotSpotShift(at=9.0, substreams=6, factor=3.0),
        )
        indexed = run_scenario(
            seed=11, scenario=ScenarioParams(use_index=True, **base), record=True
        )
        reference = run_scenario(
            seed=11, scenario=ScenarioParams(use_index=False, **base), record=True
        )
        assert json.dumps(indexed.trace.to_dict(), sort_keys=True) == (
            json.dumps(reference.trace.to_dict(), sort_keys=True)
        )
        assert indexed.results == reference.results
        assert indexed.actions == reference.actions


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------


class TestSubIdDedup:
    def test_stale_neighbour_entry_replaced_in_place(self):
        """A re-declared subscription (same id, changed filter) must
        replace its stale entry, not sit next to it."""
        for use_index in (True, False):
            t = RoutingTable(broker=0, use_index=use_index)
            old = Subscription.to_streams(
                ["R"], filter=Filter.of(("a", "<", 0)), )
            new = Subscription(
                streams=frozenset(["R"]),
                filter=Filter.of(("a", ">", 5)),
                sub_id=old.sub_id,
            )
            assert t.add_subscription(old, 1)
            # neither covers the other -> the pre-fix code appended a duplicate
            assert t.add_subscription(new, 1)
            assert t.size() == 1
            assert t.subscriptions[1] == [new]
            assert t.forwarding_interfaces(Event("R", {"a": 7})) == {1}
            assert t.forwarding_interfaces(Event("R", {"a": -7})) == set()

    def test_redeclaration_still_subject_to_covering(self):
        """A redeclared neighbour entry must not bypass covering: if the
        new filter is covered by another entry from the same interface,
        the stale entry goes and nothing redundant replaces it."""
        for use_index in (True, False):
            t = RoutingTable(broker=0, use_index=use_index)
            wide = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 0)))
            old = Subscription.to_streams(["R"], filter=Filter.of(("b", "<", 9)))
            assert t.add_subscription(wide, 1)
            assert t.add_subscription(old, 1)
            narrow = Subscription(
                streams=frozenset(["R"]),
                filter=Filter.of(("a", ">", 5)),
                sub_id=old.sub_id,
            )
            assert t.add_subscription(narrow, 1)  # table changed: old dropped
            assert t.subscriptions[1] == [wide]
            ev = Event("R", {"a": 7})
            assert t.forwarding_interfaces(ev) == {1}

    def test_redeclaration_prunes_newly_covered_entries(self):
        for use_index in (True, False):
            t = RoutingTable(broker=0, use_index=use_index)
            other = Subscription.to_streams(["R"], filter=Filter.of(("a", ">", 5)))
            old = Subscription.to_streams(["R"], filter=Filter.of(("a", "<", -5)))
            assert t.add_subscription(other, 1)
            assert t.add_subscription(old, 1)
            widened = Subscription(
                streams=frozenset(["R"]), filter=Filter(), sub_id=old.sub_id
            )
            assert t.add_subscription(widened, 1)
            assert t.subscriptions[1] == [widened]
            assert t.size() == 1

    def test_identical_redeclaration_is_noop(self):
        t = RoutingTable(broker=0)
        sub = Subscription.to_streams(["R"])
        assert t.add_subscription(sub, 1)
        assert not t.add_subscription(sub, 1)
        assert t.size() == 1

    def test_unsubscribe_repair_leaves_no_duplicates(self):
        """Regression for the ``subscribe(force=True)`` repair path."""
        tree = chain_tree(5)
        net = PubSubNetwork(tree)
        net.advertise(0, Advertisement(stream="R"))
        keeper = Subscription.to_streams(["R"])
        coverer = Subscription.to_streams(["R", "S"])
        net.subscribe(4, coverer)  # propagates 4 -> 0, covers keeper
        net.subscribe(3, keeper)  # stops at 3: covered upstream
        net.unsubscribe(coverer.sub_id)
        for _ in range(3):  # repair must be idempotent
            net.subscribe(3, keeper, force=True)
        for broker in net.brokers.values():
            for iface, entries in broker.table.subscriptions.items():
                ids = [s.sub_id for s in entries]
                assert len(ids) == len(set(ids)), (
                    f"duplicate sub_ids at broker {broker.node} iface {iface}"
                )
        deliveries = net.publish(0, Event("R", {"a": 1}))
        assert [(n, s.sub_id) for n, _, s in deliveries] == [(3, keeper.sub_id)]


class TestRemovalSafety:
    def test_unsubscribe_during_dissemination_round(self):
        """An unsubscribe fired from inside a local delivery (mid-publish)
        must not corrupt the rest of the dissemination round."""
        tree = chain_tree(5)
        net = PubSubNetwork(tree)
        net.advertise(0, Advertisement(stream="R"))
        near = Subscription.to_streams(["R"])
        far = Subscription.to_streams(["R"])
        net.subscribe(2, near)
        net.subscribe(4, far)
        broker2 = net.brokers[2]
        original = broker2.deliver_matched

        def unsubscribing_delivery(event, matching):
            out = original(event, matching)
            net.unsubscribe(far.sub_id)  # rips entries out of 0..4 tables
            return out

        broker2.deliver_matched = unsubscribing_delivery
        deliveries = net.publish(0, Event("R", {"a": 1}))
        # the near subscriber is served; the event stops cleanly wherever
        # the teardown got ahead of it -- no RuntimeError, no KeyError
        assert (2, near.sub_id) in [(n, s.sub_id) for n, _, s in deliveries]
        broker2.deliver_matched = original
        after = net.publish(0, Event("R", {"a": 2}))
        assert [(n, s.sub_id) for n, _, s in after] == [(2, near.sub_id)]

    def test_remove_while_iterating_entries(self):
        t = RoutingTable(broker=0)
        subs = [Subscription.to_streams(["R"]) for _ in range(4)]
        for i, sub in enumerate(subs):
            t.add_subscription(sub, [LOCAL, 1, 2, 3][i])
        seen = 0
        for _iface, sub in t.iter_entries():
            t.remove_subscription(sub.sub_id)  # deletes emptied keys
            seen += 1
        assert seen == 4
        assert t.size() == 0


class TestIndexConsistency:
    def test_index_tracks_table_through_random_churn(self):
        rng = np.random.default_rng(7)
        t = RoutingTable(broker=0, use_index=True)
        live = []
        for step in range(300):
            if not live or rng.random() < 0.6:
                lo = int(rng.integers(0, 50))
                sub = Subscription.to_streams(
                    [f"S{int(rng.integers(4))}"],
                    filter=Filter.of(("a", ">=", lo), ("a", "<", lo + 10)),
                )
                t.add_subscription(sub, [LOCAL, 1, 2][step % 3])
                live.append(sub)
            else:
                t.remove_subscription(live.pop(int(rng.integers(len(live)))).sub_id)
            assert len(t._index) == t.size()
        reference = RoutingTable(broker=0, use_index=False)
        for iface, sub in t.iter_entries():
            reference.add_subscription(sub, iface)
        for value in range(0, 60, 3):
            for stream in ("S0", "S1", "S2", "S3"):
                event = Event(stream, {"a": value})
                assert t.forwarding_interfaces(event) == (
                    reference.forwarding_interfaces(event)
                )
