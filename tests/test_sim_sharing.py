"""Shared multi-query execution in the discrete-event simulator (ISSUE 5).

The contract under test: with ``use_sharing=True`` every user query gets
*exactly* the results the single-engine oracle produces for the same
action order -- under churn, hot spots, and adaptation migrations -- while
far fewer merged plans execute; and with the flag off nothing changes.
"""

import json

import pytest

from repro.sim import (
    ChurnParams,
    HotSpotShift,
    ScenarioParams,
    SimWorkloadParams,
    oracle_results,
    run_scenario,
)
import repro.sim.cluster as cluster_mod


def sharing_scenario(**overrides) -> ScenarioParams:
    base = dict(
        duration=18.0,
        sample_interval=4.0,
        adapt_interval=8.0,
        initial_placement="skewed",
        churn=ChurnParams(arrival_rate=0.4, mean_lifetime=10.0),
        hotspot=HotSpotShift(at=9.0, substreams=8, factor=3.0),
        use_sharing=True,
    )
    base.update(overrides)
    return ScenarioParams(**base)


def overlap_workload(pool: int = 6) -> SimWorkloadParams:
    return SimWorkloadParams(
        num_substreams=40, num_queries=24, pool_substreams=pool
    )


def trace_json(report) -> str:
    return json.dumps(report.trace.to_dict(), sort_keys=True)


class TestSharedOracleParity:
    @pytest.mark.parametrize("seed", [0, 7, 11])
    def test_results_match_single_engine_oracle(self, seed):
        """Churn + hot spot + adaptation: per-query results are exact."""
        report = run_scenario(
            seed=seed,
            workload=overlap_workload(),
            scenario=sharing_scenario(),
            record=True,
        )
        assert report.executed_queries < report.user_queries, (
            "scenario produced no sharing -- the parity check would be vacuous"
        )
        oracle = oracle_results(report.actions)
        assert set(report.results) == set(oracle)
        total = 0
        for query_id, got in report.results.items():
            assert got == oracle[query_id], f"query {query_id} diverged"
            total += len(got)
        assert total > 0, "scenario emitted no results to compare"

    def test_parity_survives_group_migrations(self):
        """A skewed start forces adaptation to migrate shared plans."""
        report = run_scenario(
            seed=3,
            workload=overlap_workload(pool=4),
            scenario=sharing_scenario(churn=None, hotspot=None),
            record=True,
        )
        assert any(
            a.migrated_queries > 0 for a in report.trace.adaptations
        ), "no shared group migrated; the migration path went untested"
        oracle = oracle_results(report.actions)
        for query_id, got in report.results.items():
            assert got == oracle[query_id], f"query {query_id} diverged"

    def test_shared_matches_unshared_per_query(self):
        """The shared run delivers exactly the unshared run's results."""
        kwargs = dict(seed=5, workload=overlap_workload(), record=True)
        shared = run_scenario(scenario=sharing_scenario(), **kwargs)
        unshared = run_scenario(
            scenario=sharing_scenario(use_sharing=False), **kwargs
        )
        assert shared.results == unshared.results
        assert shared.executed_queries < unshared.executed_queries


class TestSharedPlaneParity:
    def test_scalar_and_batch_planes_identical(self):
        """Sharing composes with the PR 4 batch plane bit-identically."""
        kwargs = dict(seed=7, workload=overlap_workload(), record=True)
        batch = run_scenario(scenario=sharing_scenario(use_batches=True), **kwargs)
        scalar = run_scenario(scenario=sharing_scenario(use_batches=False), **kwargs)
        assert trace_json(batch) == trace_json(scalar)
        assert batch.results == scalar.results
        assert batch.link_bytes == scalar.link_bytes
        assert batch.cpu_costs == scalar.cpu_costs

    def test_route_fast_matches_hop_by_hop_walk(self, monkeypatch):
        """The memoised routes equal publishing through the broker walk."""
        kwargs = dict(seed=7, workload=overlap_workload(), record=True)
        fast = run_scenario(scenario=sharing_scenario(), **kwargs)
        orig_init = cluster_mod.SimCluster.__init__

        def reference_init(self, *args, **kw):
            orig_init(self, *args, **kw)
            self._route_fast = False

        monkeypatch.setattr(cluster_mod.SimCluster, "__init__", reference_init)
        reference = run_scenario(scenario=sharing_scenario(), **kwargs)
        assert trace_json(fast) == trace_json(reference)
        assert fast.results == reference.results
        assert fast.link_bytes == reference.link_bytes

    def test_shared_runs_are_deterministic(self):
        a = run_scenario(seed=9, workload=overlap_workload(), scenario=sharing_scenario())
        b = run_scenario(seed=9, workload=overlap_workload(), scenario=sharing_scenario())
        assert trace_json(a) == trace_json(b)


class TestUnsharedDefaultUnchanged:
    def test_flag_defaults_off(self):
        assert ScenarioParams().use_sharing is False

    def test_default_equals_explicit_off(self):
        kwargs = dict(seed=4, workload=overlap_workload())
        default = run_scenario(scenario=sharing_scenario(use_sharing=False), **kwargs)
        explicit = run_scenario(
            scenario=sharing_scenario(use_sharing=False), **kwargs
        )
        assert trace_json(default) == trace_json(explicit)
        assert default.executed_queries == default.user_queries


class TestLoadAttribution:
    def test_group_cpu_attributed_to_members(self):
        """Engine-measured group cost flows back to member query loads."""
        report = run_scenario(
            seed=2,
            workload=overlap_workload(pool=4),
            scenario=sharing_scenario(churn=None, hotspot=None),
            record=True,
        )
        assert report.cpu_costs, "no attributed CPU costs recorded"
        assert sum(report.cpu_costs.values()) > 0
        # every user query that produced results carries attributed cost
        for query_id, rows in report.results.items():
            if rows:
                assert report.cpu_costs.get(query_id, 0) > 0


class TestOverlapKnob:
    def test_pool_restricts_interests(self):
        wl = overlap_workload(pool=3)
        report = run_scenario(
            seed=1, workload=wl,
            scenario=sharing_scenario(churn=None, hotspot=None, adapt_interval=None),
        )
        substreams = set()
        for simq in report.queries.values():
            substreams.update(simq.substreams)
        assert len(substreams) <= 3

    def test_default_pool_is_whole_space(self):
        a = SimWorkloadParams(num_substreams=30, num_queries=10)
        b = SimWorkloadParams(num_substreams=30, num_queries=10, pool_substreams=30)
        from repro.query.interest import SubstreamSpace
        from repro.sim.workload import SimQueryFactory
        import numpy as np

        space = SubstreamSpace.random(30, [0], rng=np.random.default_rng(1))
        qa = SimQueryFactory(space, [10], a, np.random.default_rng(3)).make_batch(8)
        qb = SimQueryFactory(space, [10], b, np.random.default_rng(3)).make_batch(8)
        assert [q.text for q in qa] == [q.text for q in qb]

    def test_rejects_bad_pool(self):
        import numpy as np

        from repro.query.interest import SubstreamSpace
        from repro.sim.workload import SimQueryFactory

        space = SubstreamSpace.random(10, [0], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            SimQueryFactory(
                space, [1], SimWorkloadParams(pool_substreams=0),
                np.random.default_rng(0),
            )
