"""Tests for the graph-mapping model: WEC, load constraint, construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graphs import (
    DEFAULT_ALPHA,
    NetVertex,
    NetworkGraph,
    NVertex,
    QueryGraph,
    QVertex,
    build_query_graph,
    qvertex_from_query,
)
from repro.query.interest import SubstreamSpace, mask_of
from repro.query.workload import QuerySpec


def simple_distance(a, b):
    return 0.0 if a == b else abs(a - b)


@pytest.fixture
def ng():
    return NetworkGraph(
        [
            NetVertex(vid="A", site=0, capability=1.0, covers=frozenset([0])),
            NetVertex(vid="B", site=10, capability=1.0, covers=frozenset([10])),
        ],
        simple_distance,
    )


def make_qvertex(vid, weight=1.0, sources=None, proxies=None, mask=0):
    return QVertex(
        vid=vid,
        weight=weight,
        mask=mask,
        source_rates=sources or {},
        proxy_rates=proxies or {},
        members=(0,),
    )


class TestNetworkGraph:
    def test_covering_vertex(self, ng):
        assert ng.covering_vertex(0) == "A"
        assert ng.covering_vertex(10) == "B"
        assert ng.covering_vertex(99) is None

    def test_distance_zero_same_vertex(self, ng):
        assert ng.distance("A", "A") == 0.0

    def test_distance_between_sites(self, ng):
        assert ng.distance("A", "B") == 10.0

    def test_total_capability(self, ng):
        assert ng.total_capability() == 2.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            NetworkGraph([], simple_distance)


class TestQueryGraph:
    def test_duplicate_vertex_rejected(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        with pytest.raises(ValueError):
            g.add_qvertex(make_qvertex("q1"))

    def test_edges_are_symmetric(self):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_qvertex(make_qvertex("q2"))
        g.add_edge("q1", "q2", 5.0)
        assert g.adj["q1"]["q2"] == 5.0
        assert g.adj["q2"]["q1"] == 5.0

    def test_zero_weight_edge_ignored(self):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_qvertex(make_qvertex("q2"))
        g.add_edge("q1", "q2", 0.0)
        assert "q2" not in g.adj["q1"]

    def test_self_edge_ignored(self):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_edge("q1", "q1", 5.0)
        assert g.adj["q1"] == {}

    def test_remove_vertex_cleans_edges(self):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_qvertex(make_qvertex("q2"))
        g.add_edge("q1", "q2", 5.0)
        g.remove_vertex("q1")
        assert "q1" not in g.adj["q2"]
        assert g.vertex_count() == 1

    def test_total_qweight(self):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1", weight=2.0))
        g.add_qvertex(make_qvertex("q2", weight=3.0))
        assert g.total_qweight() == 5.0


class TestWEC:
    def test_colocated_edge_costs_nothing(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_qvertex(make_qvertex("q2"))
        g.add_edge("q1", "q2", 7.0)
        assert g.wec({"q1": "A", "q2": "A"}, ng) == 0.0

    def test_separated_edge_costs_weight_times_distance(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_qvertex(make_qvertex("q2"))
        g.add_edge("q1", "q2", 7.0)
        assert g.wec({"q1": "A", "q2": "B"}, ng) == 70.0

    def test_pinned_nvertex_position(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_nvertex(NVertex(vid="n0", node=0, clu="A"))
        g.add_edge("q1", "n0", 3.0)
        assert g.wec({"q1": "B", "n0": "A"}, ng) == 30.0

    def test_external_nvertex_uses_own_node(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_nvertex(NVertex(vid="ext", node=4, clu=None))
        g.add_edge("q1", "ext", 2.0)
        # q1 at A (site 0): distance to node 4 is 4
        assert g.wec({"q1": "A"}, ng) == 8.0

    def test_each_edge_counted_once(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1"))
        g.add_qvertex(make_qvertex("q2"))
        g.add_edge("q1", "q2", 1.0)
        # if double counted this would be 20
        assert g.wec({"q1": "A", "q2": "B"}, ng) == 10.0


class TestLoadConstraint:
    def test_limits_follow_eqn_3_1(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1", weight=6.0))
        g.add_qvertex(make_qvertex("q2", weight=4.0))
        limits = g.capacity_limits(ng, alpha=0.1)
        # (1 + 0.1) * 1 * 10 / 2 = 5.5 per vertex
        assert limits["A"] == pytest.approx(5.5)

    def test_satisfies_constraint(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1", weight=5.0))
        g.add_qvertex(make_qvertex("q2", weight=5.0))
        good = {"q1": "A", "q2": "B"}
        bad = {"q1": "A", "q2": "A"}
        assert g.satisfies_load_constraint(good, ng)
        assert not g.satisfies_load_constraint(bad, ng)

    def test_loads(self, ng):
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1", weight=2.0))
        g.add_qvertex(make_qvertex("q2", weight=3.0))
        loads = g.loads({"q1": "A", "q2": "A"}, ng)
        assert loads == {"A": 5.0, "B": 0.0}

    def test_heterogeneous_capabilities(self):
        ng2 = NetworkGraph(
            [
                NetVertex(vid="A", site=0, capability=3.0, covers=frozenset([0])),
                NetVertex(vid="B", site=1, capability=1.0, covers=frozenset([1])),
            ],
            simple_distance,
        )
        g = QueryGraph()
        g.add_qvertex(make_qvertex("q1", weight=8.0))
        limits = g.capacity_limits(ng2, alpha=0.0)
        assert limits["A"] == pytest.approx(6.0)
        assert limits["B"] == pytest.approx(2.0)


class TestBuildQueryGraph:
    @pytest.fixture
    def space(self):
        return SubstreamSpace.random(100, sources=[0, 10], seed=2)

    def test_atomic_vertex_from_query(self, space):
        q = QuerySpec(
            query_id=1, proxy=10, mask=mask_of([0, 1, 2]), group=0,
            load=0.5, result_rate=1.0, state_size=2.0,
        )
        v = qvertex_from_query(q, space)
        assert v.members == (1,)
        assert sum(v.source_rates.values()) == pytest.approx(space.rate(q.mask))
        assert v.proxy_rates == {10: 1.0}

    def test_graph_has_nvertices_for_sources_and_proxies(self, space, ng):
        queries = [
            QuerySpec(query_id=i, proxy=10, mask=mask_of([i, i + 1]),
                      group=0, load=0.1, result_rate=0.5, state_size=1.0)
            for i in range(3)
        ]
        verts = [qvertex_from_query(q, space) for q in queries]
        g = build_query_graph(verts, space, ng)
        n_nodes = {nv.node for nv in g.nverts.values()}
        assert 10 in n_nodes  # the proxy
        assert len(g.qverts) == 3

    def test_overlap_edges_present_and_exact(self, space, ng):
        q1 = QuerySpec(query_id=1, proxy=10, mask=mask_of([0, 1, 2]),
                       group=0, load=0.1, result_rate=0.5, state_size=1.0)
        q2 = QuerySpec(query_id=2, proxy=10, mask=mask_of([1, 2, 3]),
                       group=0, load=0.1, result_rate=0.5, state_size=1.0)
        g = build_query_graph(
            [qvertex_from_query(q1, space), qvertex_from_query(q2, space)],
            space, ng,
        )
        w = g.adj[("q", 1)][("q", 2)]
        assert w == pytest.approx(space.overlap_rate(q1.mask, q2.mask))

    def test_overlap_neighbor_cap(self, space, ng):
        queries = [
            QuerySpec(query_id=i, proxy=10, mask=mask_of([0, 1]), group=0,
                      load=0.1, result_rate=0.5, state_size=1.0)
            for i in range(30)
        ]
        verts = [qvertex_from_query(q, space) for q in queries]
        g = build_query_graph(verts, space, ng, max_overlap_neighbors=5)
        # the cap bounds the total overlap-edge count (each vertex keeps
        # at most 5 of its own, though it may also be chosen by others)
        total_q_edges = sum(
            1 for a, b, _ in g.edges() if a in g.qverts and b in g.qverts
        )
        assert total_q_edges <= 30 * 5

    def test_pinning_against_network_graph(self, space, ng):
        q = QuerySpec(query_id=1, proxy=10, mask=mask_of([5]), group=0,
                      load=0.1, result_rate=0.5, state_size=1.0)
        g = build_query_graph([qvertex_from_query(q, space)], space, ng)
        assert g.nverts[("n", 10)].clu == "B"
        source = int(space.source_of[5])
        expected_clu = "A" if source == 0 else "B"
        assert g.nverts[("n", source)].clu == expected_clu
