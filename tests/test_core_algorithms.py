"""Tests for coarsening (Alg 1), mapping (Alg 2), diffusion and Alg 3."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coarsening import coarsen, merge_qvertices, uncoarsen_vertex
from repro.core.diffusion import diffusion_solution
from repro.core.graphs import (
    NetVertex,
    NetworkGraph,
    build_query_graph,
    qvertex_from_query,
)
from repro.core.mapping import greedy_mapping, map_graph, refine_mapping
from repro.core.rebalance import rebalance, refine_distribution
from repro.query.interest import SubstreamSpace, mask_of
from repro.query.workload import QuerySpec


@pytest.fixture(scope="module")
def space():
    return SubstreamSpace.random(300, sources=[0, 100], seed=11)


@pytest.fixture(scope="module")
def ng():
    return NetworkGraph(
        [
            NetVertex(vid=f"P{i}", site=i * 10, capability=1.0,
                      covers=frozenset([i * 10]))
            for i in range(4)
        ],
        lambda a, b: abs(a - b),
    )


def make_queries(space, n, seed=0, proxy_nodes=(0, 10, 20, 30)):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        ids = rng.sample(range(len(space)), rng.randint(5, 15))
        mask = mask_of(ids)
        out.append(
            QuerySpec(
                query_id=i,
                proxy=rng.choice(list(proxy_nodes)),
                mask=mask,
                group=0,
                load=0.01 * space.rate(mask),
                result_rate=1.0,
                state_size=rng.uniform(1, 10),
            )
        )
    return out


def graph_of(space, ng, queries):
    return build_query_graph(
        [qvertex_from_query(q, space) for q in queries], space, ng
    )


class TestCoarsening:
    def test_respects_vmax(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 60))
        coarse = coarsen(g, 10, space)
        assert len(coarse.qverts) + len(coarse.nverts) <= max(
            10, len(coarse.nverts) + 1
        )

    def test_preserves_total_weight(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 40))
        coarse = coarsen(g, 8, space)
        assert coarse.total_qweight() == pytest.approx(g.total_qweight())

    def test_preserves_members(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 40))
        coarse = coarsen(g, 8, space)
        members = []
        for v in coarse.qverts.values():
            members.extend(v.members)
        assert sorted(members) == list(range(40))

    def test_merged_mask_is_union(self, space):
        queries = make_queries(space, 2)
        a, b = (qvertex_from_query(q, space) for q in queries)
        m = merge_qvertices(a, b)
        assert m.mask == a.mask | b.mask
        assert m.weight == pytest.approx(a.weight + b.weight)
        assert m.state_size == pytest.approx(a.state_size + b.state_size)

    def test_merged_source_rates_sum(self, space):
        queries = make_queries(space, 2)
        a, b = (qvertex_from_query(q, space) for q in queries)
        m = merge_qvertices(a, b)
        for node in set(a.source_rates) | set(b.source_rates):
            expected = a.source_rates.get(node, 0) + b.source_rates.get(node, 0)
            assert m.source_rates[node] == pytest.approx(expected)

    def test_uncoarsen_roundtrip(self, space):
        queries = make_queries(space, 2)
        a, b = (qvertex_from_query(q, space) for q in queries)
        m = merge_qvertices(a, b)
        assert set(v.vid for v in uncoarsen_vertex(m)) == {a.vid, b.vid}

    def test_uncoarsen_atomic_is_identity(self, space):
        v = qvertex_from_query(make_queries(space, 1)[0], space)
        assert uncoarsen_vertex(v) == [v]

    def test_nvertices_never_merged(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 40))
        n_before = set(g.nverts)
        coarse = coarsen(g, 5, space)
        assert set(coarse.nverts) == n_before

    def test_original_graph_untouched(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 30))
        count = g.vertex_count()
        coarsen(g, 5, space)
        assert g.vertex_count() == count

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), vmax=st.integers(4, 30))
    def test_weight_invariant_random(self, space, ng, seed, vmax):
        g = graph_of(space, ng, make_queries(space, 35, seed=seed))
        coarse = coarsen(g, vmax, space, rng=random.Random(seed))
        assert coarse.total_qweight() == pytest.approx(g.total_qweight())


class TestMapping:
    def test_pinned_nvertices(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 20))
        mapping = greedy_mapping(g, ng)
        for vid, nv in g.nverts.items():
            if nv.clu is not None:
                assert mapping[vid] == nv.clu

    def test_all_qvertices_mapped(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 20))
        result = map_graph(g, ng)
        assert set(g.qverts) <= set(result.mapping)

    def test_refinement_never_worse_than_greedy(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 30))
        initial = greedy_mapping(g, ng)
        initial_wec = g.wec(initial, ng)
        result = refine_mapping(g, ng, initial)
        assert result.wec <= initial_wec + 1e-6

    def test_reported_wec_matches_recomputation(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 25))
        result = map_graph(g, ng)
        assert result.wec == pytest.approx(g.wec(result.mapping, ng))

    def test_load_constraint_feasible_when_possible(self, space, ng):
        g = graph_of(space, ng, make_queries(space, 40))
        result = map_graph(g, ng)
        assert result.feasible

    def test_single_target_trivial(self, space):
        ng1 = NetworkGraph(
            [NetVertex(vid="only", site=0, capability=1.0,
                       covers=frozenset([0]))],
            lambda a, b: abs(a - b),
        )
        g = graph_of(space, ng1, make_queries(space, 5, proxy_nodes=(0,)))
        result = map_graph(g, ng1)
        assert all(result.mapping[v] == "only" for v in g.qverts)

    def test_empty_query_graph(self, space, ng):
        g = build_query_graph([], space, ng)
        result = map_graph(g, ng)
        assert result.wec == 0.0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_refinement_monotone_random(self, space, ng, seed):
        g = graph_of(space, ng, make_queries(space, 25, seed=seed))
        initial = greedy_mapping(g, ng)
        result = refine_mapping(g, ng, initial)
        assert result.wec <= g.wec(initial, ng) + 1e-6


class TestDiffusion:
    def test_balanced_input_no_flow(self):
        flows = diffusion_solution({"a": 5.0, "b": 5.0}, {"a": 5.0, "b": 5.0})
        assert flows == {}

    def test_flow_from_overloaded_to_underloaded(self):
        flows = diffusion_solution({"a": 8.0, "b": 2.0}, {"a": 5.0, "b": 5.0})
        assert flows[("a", "b")] == pytest.approx(3.0)
        assert ("b", "a") not in flows

    def test_net_flow_balances_every_node(self):
        loads = {"a": 10.0, "b": 2.0, "c": 3.0}
        targets = {"a": 5.0, "b": 5.0, "c": 5.0}
        flows = diffusion_solution(loads, targets)
        for node in loads:
            out = sum(v for (i, j), v in flows.items() if i == node)
            inn = sum(v for (i, j), v in flows.items() if j == node)
            assert loads[node] - out + inn == pytest.approx(targets[node])

    def test_respects_capability_weighted_targets(self):
        flows = diffusion_solution(
            {"a": 6.0, "b": 6.0}, {"a": 9.0, "b": 3.0}
        )
        assert flows[("b", "a")] == pytest.approx(3.0)

    def test_single_node_no_flows(self):
        assert diffusion_solution({"a": 3.0}, {"a": 1.0}) == {}

    def test_zero_targets_raise(self):
        with pytest.raises(ValueError):
            diffusion_solution({"a": 1.0, "b": 1.0}, {"a": 0.0, "b": 0.0})

    @settings(max_examples=100, deadline=None)
    @given(loads=st.lists(
        st.floats(0.0, 100.0, allow_subnormal=False), min_size=2, max_size=8))
    def test_minimal_norm_property_random(self, loads):
        """Flows only go from above-target to below-target (monotone in
        the potential x), and per-node balance holds."""
        nodes = {f"n{i}": l for i, l in enumerate(loads)}
        total = sum(loads)
        if total <= 1e-6:
            return
        targets = {n: total / len(nodes) for n in nodes}
        flows = diffusion_solution(nodes, targets)
        for n in nodes:
            out = sum(v for (i, j), v in flows.items() if i == n)
            inn = sum(v for (i, j), v in flows.items() if j == n)
            assert nodes[n] - out + inn == pytest.approx(targets[n], abs=1e-6)


class TestRebalance:
    def _setup(self, space, ng, n=40, seed=3):
        queries = make_queries(space, n, seed=seed)
        g = graph_of(space, ng, queries)
        # deliberately imbalanced start: everything on P0
        assignment = dict(g.pinned_mapping(ng))
        for vid in g.qverts:
            assignment[vid] = "P0"
        return g, assignment

    def test_rebalance_reduces_imbalance(self, space, ng):
        g, assignment = self._setup(space, ng)
        before = max(g.loads(assignment, ng).values())
        rebalance(g, ng, assignment, rng=random.Random(1))
        after = max(g.loads(assignment, ng).values())
        assert after < before

    def test_rebalance_reaches_near_balance(self, space, ng):
        g, assignment = self._setup(space, ng)
        rebalance(g, ng, assignment, rng=random.Random(1))
        loads = g.loads(assignment, ng)
        target = g.total_qweight() / len(ng)
        assert max(loads.values()) <= 1.5 * target

    def test_dirty_vertices_tracked(self, space, ng):
        g, assignment = self._setup(space, ng)
        stats = rebalance(g, ng, assignment, rng=random.Random(1))
        assert stats.moved_vertices >= len(stats.dirty) > 0

    def test_moved_state_counts_unique_vertices(self, space, ng):
        g, assignment = self._setup(space, ng)
        stats = rebalance(g, ng, assignment, rng=random.Random(1))
        expected = sum(g.qverts[v].state_size for v in stats.dirty)
        assert stats.moved_state == pytest.approx(expected)

    def test_refinement_never_increases_wec(self, space, ng):
        g, assignment = self._setup(space, ng)
        rebalance(g, ng, assignment, rng=random.Random(1))
        original = dict(assignment)
        wec_before = g.wec(assignment, ng)
        refine_distribution(g, ng, assignment, original, rng=random.Random(2))
        assert g.wec(assignment, ng) <= wec_before + 1e-6

    def test_refinement_respects_load_cap(self, space, ng):
        g, assignment = self._setup(space, ng)
        rebalance(g, ng, assignment, rng=random.Random(1))
        refine_distribution(
            g, ng, assignment, dict(assignment), rng=random.Random(2)
        )
        limits = g.capacity_limits(ng)
        loads = g.loads(assignment, ng)
        # refinement must not create NEW violations
        assert all(loads[t] <= limits[t] + g.total_qweight() * 0.01
                   for t in ng.ids())

    def test_balanced_start_is_noop(self, space, ng):
        queries = make_queries(space, 16, seed=5)
        g = graph_of(space, ng, queries)
        assignment = dict(g.pinned_mapping(ng))
        for i, vid in enumerate(sorted(g.qverts, key=str)):
            assignment[vid] = f"P{i % 4}"
        stats = rebalance(g, ng, assignment, rng=random.Random(1))
        # loads are near-balanced: very few moves expected
        assert stats.moved_weight <= 0.5 * g.total_qweight()
