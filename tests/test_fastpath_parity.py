"""Fast-path parity: vectorized kernels match the pure-Python references.

Every vectorised kernel introduced for the optimizer keeps its reference
implementation; these property-style tests assert both paths agree on
randomized workloads:

* ``QueryGraph.wec`` (GraphArrays gather) vs ``QueryGraph.wec_reference``
* ``GraphArrays.loads`` vs ``QueryGraph.loads``
* ``diffusion_solution`` (closed form) vs ``diffusion_solution_reference``
* ``coarsen(fast=True)`` vs ``coarsen(fast=False)`` -- identical graphs
* ``CostWorkspace.attach_costs`` vs the scalar ``_attach_cost`` loop
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coarsening import coarsen
from repro.core.diffusion import diffusion_solution, diffusion_solution_reference
from repro.core.fastcost import CostWorkspace
from repro.core.graphs import (
    GraphArrays,
    NetVertex,
    NetworkGraph,
    build_query_graph,
    qvertex_from_query,
)
from repro.core.mapping import _attach_cost, _positions, map_graph
from repro.query.interest import SubstreamSpace, mask_of
from repro.query.workload import QuerySpec


@pytest.fixture(scope="module")
def space():
    return SubstreamSpace.random(400, sources=[0, 50, 100], seed=7)


@pytest.fixture(scope="module")
def ng():
    return NetworkGraph(
        [
            NetVertex(vid=f"P{i}", site=i * 7, capability=1.0,
                      covers=frozenset([i * 7]))
            for i in range(5)
        ],
        lambda a, b: abs(a - b),
    )


def make_graph(space, ng, n, seed=0):
    rng = random.Random(seed)
    queries = []
    for i in range(n):
        ids = rng.sample(range(len(space)), rng.randint(4, 18))
        mask = mask_of(ids)
        queries.append(
            QuerySpec(
                query_id=i,
                proxy=rng.choice([0, 7, 14, 21, 28]),
                mask=mask,
                group=0,
                load=0.01 * space.rate(mask),
                result_rate=1.0,
                state_size=rng.uniform(1, 5),
            )
        )
    return build_query_graph(
        [qvertex_from_query(q, space) for q in queries], space, ng
    )


def random_mapping(g, ng, seed=0):
    rng = random.Random(seed)
    targets = ng.ids()
    return {vid: rng.choice(targets) for vid in g.qverts}


class TestWECParity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_vectorized_matches_reference(self, space, ng, seed):
        g = make_graph(space, ng, 30, seed=seed % 7)
        mapping = random_mapping(g, ng, seed=seed)
        fast = g.wec(mapping, ng)
        ref = g.wec_reference(mapping, ng)
        assert fast == pytest.approx(ref, rel=1e-9, abs=1e-9)

    def test_snapshot_cache_invalidated_on_mutation(self, space, ng):
        g = make_graph(space, ng, 12, seed=1)
        mapping = random_mapping(g, ng, seed=1)
        before = g.wec(mapping, ng)
        vids = list(g.qverts)
        g.set_edge(vids[0], vids[1], 123.0)
        after = g.wec(mapping, ng)
        assert after == pytest.approx(g.wec_reference(mapping, ng))
        assert after != pytest.approx(before)

    def test_empty_graph(self, space, ng):
        g = build_query_graph([], space, ng)
        assert g.wec({}, ng) == 0.0

    def test_snapshot_invalidated_by_clear_edges(self, space, ng):
        # rebuild_edges resets adjacency via clear_edges(); the cached
        # snapshot must not survive it even when no edge is re-added
        g = make_graph(space, ng, 10, seed=2)
        mapping = random_mapping(g, ng, seed=2)
        assert g.wec(mapping, ng) > 0.0
        g.clear_edges()
        assert g.wec(mapping, ng) == 0.0

    def test_loads_parity(self, space, ng):
        g = make_graph(space, ng, 25, seed=3)
        mapping = random_mapping(g, ng, seed=3)
        fast = g.arrays_for(ng).loads(mapping)
        ref = g.loads(mapping, ng)
        for i, t in enumerate(ng.ids()):
            assert fast[i] == pytest.approx(ref[t])

    def test_mapped_graph_wec_consistent(self, space, ng):
        # end to end: the mapping pipeline's reported WEC agrees with
        # both evaluation paths
        g = make_graph(space, ng, 30, seed=4)
        result = map_graph(g, ng)
        assert result.wec == pytest.approx(g.wec(result.mapping, ng))
        assert result.wec == pytest.approx(
            g.wec_reference(result.mapping, ng)
        )

    def test_no_oracle_distance_matrix(self, space, ng):
        # ng has no oracle: GraphArrays must fall back to pairwise
        # site_distance calls and still agree
        g = make_graph(space, ng, 15, seed=5)
        arrays = GraphArrays(g, ng)
        assert arrays.D.shape[0] == arrays.D.shape[1]
        mapping = random_mapping(g, ng, seed=5)
        assert arrays.wec(mapping) == pytest.approx(
            g.wec_reference(mapping, ng)
        )


class TestDiffusionParity:
    @settings(max_examples=50, deadline=None)
    @given(
        loads=st.lists(
            st.floats(0.0, 100.0, allow_subnormal=False),
            min_size=2,
            max_size=12,
        )
    )
    def test_flows_match_reference(self, loads):
        if sum(loads) <= 1e-6:
            return
        nodes = {f"n{i}": l for i, l in enumerate(loads)}
        targets = {n: 1.0 for n in nodes}
        fast = diffusion_solution(nodes, targets)
        ref = diffusion_solution_reference(nodes, targets)
        keys = set(fast) | set(ref)
        for k in keys:
            assert fast.get(k, 0.0) == pytest.approx(
                ref.get(k, 0.0), abs=1e-9
            )

    def test_both_reject_zero_targets(self):
        for fn in (diffusion_solution, diffusion_solution_reference):
            with pytest.raises(ValueError):
                fn({"a": 1.0, "b": 1.0}, {"a": 0.0, "b": 0.0})

    def test_both_trivial_on_single_node(self):
        assert diffusion_solution({"a": 3.0}, {"a": 1.0}) == {}
        assert diffusion_solution_reference({"a": 3.0}, {"a": 1.0}) == {}


class TestCoarseningParity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), vmax=st.integers(5, 30))
    def test_identical_partition_and_edges(self, space, ng, seed, vmax):
        g = make_graph(space, ng, 40, seed=seed % 5)
        fast = coarsen(g, vmax, space, rng=random.Random(seed), fast=True)
        ref = coarsen(g, vmax, space, rng=random.Random(seed), fast=False)

        def partition(cg):
            return sorted(
                tuple(sorted(v.members)) for v in cg.qverts.values()
            )

        assert partition(fast) == partition(ref)
        assert fast.total_qweight() == pytest.approx(ref.total_qweight())

        def edge_set(cg):
            return {
                (frozenset((tuple(sorted(cg.qverts[a].members))
                            if a in cg.qverts else a,
                            tuple(sorted(cg.qverts[b].members))
                            if b in cg.qverts else b)), round(w, 9))
                for a, b, w in cg.edges()
            }

        assert edge_set(fast) == edge_set(ref)


class TestAttachCostParity:
    def test_workspace_matches_scalar_reference(self, space, ng):
        g = make_graph(space, ng, 30, seed=9)
        mapping = random_mapping(g, ng, seed=9)
        pos = _positions(g, mapping, ng)
        ws = CostWorkspace(g, ng)
        ws.init_positions(mapping)
        for vid in list(g.qverts)[:10]:
            fast = ws.attach_costs(vid)
            for i, t in enumerate(ng.ids()):
                assert fast[i] == pytest.approx(
                    _attach_cost(g, vid, t, pos, ng), rel=1e-9, abs=1e-9
                )
