"""Smoke tests for the experiment drivers (tiny configurations).

The benchmarks run the figure-scale versions; these tests only verify the
drivers are wired correctly and their headline claims hold at toy scale.
"""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, table2
from repro.experiments.config import (
    ExperimentConfig,
    bench_scale,
    build_testbed,
    paper_scale,
)


def tiny(num_queries=200):
    from dataclasses import replace

    cfg = bench_scale(num_queries)
    return replace(
        cfg,
        num_processors=12,
        num_sources=6,
        workload=replace(
            cfg.workload,
            num_substreams=1000,
            substreams_per_query=(8, 16),
        ),
        cosmos=replace(cfg.cosmos, vmax=40),
    )


class TestConfig:
    def test_bench_scale_defaults(self):
        cfg = bench_scale()
        assert cfg.workload.num_queries == 1500

    def test_paper_scale_matches_paper(self):
        cfg = paper_scale()
        assert cfg.num_processors == 256
        assert cfg.num_sources == 100
        assert cfg.workload.num_substreams == 20000
        assert cfg.topology.node_count() >= 4096

    def test_with_queries(self):
        assert bench_scale().with_queries(42).workload.num_queries == 42

    def test_with_k(self):
        assert bench_scale().with_k(8).cosmos.k == 8

    def test_build_testbed(self):
        bed = build_testbed(tiny(50))
        assert len(bed.processors) == 12
        assert len(bed.workload.queries) == 50
        assert bed.cost(
            {q.query_id: q.proxy for q in bed.workload.queries}
        ) > 0


class TestTable2:
    def test_scheme_ordering(self):
        results = table2.run()
        assert results["scheme3"] < results["scheme2"] < results["scheme1"]

    def test_algorithm2_not_worse_than_naive_scheme(self):
        results = table2.run()
        assert results["algorithm2"] <= results["scheme1"] + 1e-9

    def test_format_mentions_ordering(self):
        text = table2.format_results(table2.run())
        assert "scheme3 < scheme2 < scheme1: True" in text


class TestFig6:
    def test_rows_and_ordering(self):
        rows = fig6.run(tiny(), query_counts=(100, 200))
        assert [r.num_queries for r in rows] == [100, 200]
        for r in rows:
            assert r.cost_naive >= r.cost_hierarchical * 0.9
            assert r.time_hierarchical_response <= r.time_hierarchical_total + 1e-9
        assert "Figure 6" in fig6.format_rows(rows)


class TestFig7:
    def test_adaptation_improves_random_start(self):
        series = fig7.run(tiny(), rounds=3)
        assert len(series.rounds) == 4
        assert series.a_inaccurate_cost[-1] <= series.na_inaccurate_cost[-1]
        assert "Figure 7" in fig7.format_series(series)


class TestFig8:
    def test_series_lengths(self):
        series = fig8.run(tiny(), intervals=2, batch_size=10)
        assert len(series.intervals) == 3
        assert len(series.random_cost) == 3
        assert "Figure 8" in fig8.format_series(series)


class TestFig9:
    def test_rows(self):
        rows = fig9.run(tiny(), ks=(2, 4), insertions=20, num_processors=16)
        assert {r.k for r in rows} == {2, 4}
        assert all(r.throughput > 0 for r in rows)
        assert "Figure 9" in fig9.format_rows(rows)


class TestFig10:
    def test_migration_accounting(self):
        series = fig10.run(tiny(), pattern=("I", "D"), perturbed_streams=40)
        assert len(series.steps) == 3
        assert series.remapping_migrations >= 0
        assert "migrations" in fig10.format_series(series)


class TestFig11:
    def test_rows(self):
        rows = fig11.run(query_counts=(60, 120), num_nodes=20, num_sensors=40)
        assert [r.num_queries for r in rows] == [60, 120]
        assert all(r.cost_cosmos > 0 for r in rows)
        assert "Figure 11" in fig11.format_rows(rows)
