"""Tests for the transit-stub topology generator and latency oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    LatencyOracle,
    OverlayTree,
    Topology,
    TransitStubParams,
    dijkstra,
    generate_transit_stub,
    minimum_latency_spanning_tree,
    select_roles,
)


@pytest.fixture(scope="module")
def topo():
    return generate_transit_stub(TransitStubParams(), seed=7)


@pytest.fixture(scope="module")
def oracle(topo):
    return LatencyOracle(topo)


class TestGeneration:
    def test_node_count_matches_params(self, topo):
        assert topo.n == TransitStubParams().node_count()

    def test_connected(self, topo):
        assert topo.is_connected()

    def test_partitions_are_disjoint_and_complete(self, topo):
        transit = set(topo.transit_nodes)
        stub = set(topo.stub_nodes)
        assert transit.isdisjoint(stub)
        assert transit | stub == set(range(topo.n))

    def test_every_stub_node_has_stub_domain(self, topo):
        for node in topo.stub_nodes:
            assert node in topo.stub_of

    def test_edge_symmetry(self, topo):
        for u in range(topo.n):
            for v, lat in topo.adjacency[u]:
                back = [l for w, l in topo.adjacency[v] if w == u]
                assert back == [lat]

    def test_no_self_loops(self, topo):
        for u in range(topo.n):
            assert all(v != u for v, _ in topo.adjacency[u])

    def test_latencies_positive(self, topo):
        for u in range(topo.n):
            for _, lat in topo.adjacency[u]:
                assert lat > 0

    def test_deterministic_for_seed(self):
        a = generate_transit_stub(TransitStubParams(), seed=3)
        b = generate_transit_stub(TransitStubParams(), seed=3)
        assert a.adjacency == b.adjacency

    def test_different_seeds_differ(self):
        a = generate_transit_stub(TransitStubParams(), seed=3)
        b = generate_transit_stub(TransitStubParams(), seed=4)
        assert a.adjacency != b.adjacency

    def test_paper_scale_node_count(self):
        assert TransitStubParams.paper_scale().node_count() >= 4096

    def test_add_edge_rejects_self_loop(self, topo):
        with pytest.raises(ValueError):
            topo.add_edge(1, 1, 1.0)

    def test_duplicate_edge_keeps_smaller_latency(self):
        t = Topology(n=2, adjacency=[[], []])
        t.add_edge(0, 1, 5.0)
        t.add_edge(0, 1, 3.0)
        assert t.adjacency[0] == [(1, 3.0)]
        t.add_edge(0, 1, 9.0)
        assert t.adjacency[0] == [(1, 3.0)]

    def test_intra_stub_cheaper_than_transit_links(self, topo):
        params = TransitStubParams()
        stub_max = params.intra_stub_latency[1]
        tt_min = params.transit_transit_latency[0]
        assert stub_max < tt_min


class TestDijkstra:
    def test_distance_to_self_zero(self, topo):
        assert dijkstra(topo, 0)[0] == 0.0

    def test_all_reachable(self, topo):
        dist = dijkstra(topo, 0)
        assert all(d < float("inf") for d in dist)

    def test_triangle_inequality_via_edges(self, topo):
        dist = dijkstra(topo, 0)
        for u in range(topo.n):
            for v, lat in topo.adjacency[u]:
                assert dist[v] <= dist[u] + lat + 1e-9

    def test_matches_direct_edge_when_shortest(self):
        t = Topology(n=3, adjacency=[[], [], []])
        t.add_edge(0, 1, 1.0)
        t.add_edge(1, 2, 1.0)
        t.add_edge(0, 2, 10.0)
        assert dijkstra(t, 0)[2] == 2.0


class TestOracle:
    def test_symmetry(self, oracle, topo):
        assert oracle(3, 17) == pytest.approx(oracle(17, 3))

    def test_zero_diagonal(self, oracle):
        assert oracle(5, 5) == 0.0

    def test_caches_rows(self, oracle):
        oracle.row(2)
        assert 2 in oracle._rows

    def test_median_minimises_total_latency(self, oracle, topo):
        members = list(range(0, topo.n, 7))[:8]
        med = oracle.median(members)
        total = lambda u: sum(oracle(u, v) for v in members)
        assert all(total(med) <= total(u) + 1e-9 for u in members)

    def test_median_of_singleton(self, oracle):
        assert oracle.median([4]) == 4

    def test_median_empty_raises(self, oracle):
        with pytest.raises(ValueError):
            oracle.median([])


class TestRoles:
    def test_disjoint_roles(self, topo):
        sources, processors = select_roles(topo, 4, 8, seed=1)
        assert set(sources).isdisjoint(processors)
        assert len(sources) == 4 and len(processors) == 8

    def test_roles_are_stub_nodes(self, topo):
        sources, processors = select_roles(topo, 4, 8, seed=1)
        stub = set(topo.stub_nodes)
        assert set(sources) <= stub and set(processors) <= stub

    def test_too_many_roles_raises(self, topo):
        with pytest.raises(ValueError):
            select_roles(topo, topo.n, topo.n, seed=1)


class TestOverlay:
    def test_mst_is_tree(self, topo, oracle):
        sources, processors = select_roles(topo, 3, 9, seed=2)
        tree = minimum_latency_spanning_tree(sources + processors, oracle)
        assert tree.is_tree()
        assert len(tree.edges()) == len(tree.nodes) - 1

    def test_path_endpoints(self, topo, oracle):
        sources, processors = select_roles(topo, 3, 9, seed=2)
        tree = minimum_latency_spanning_tree(sources + processors, oracle)
        a, b = tree.nodes[0], tree.nodes[-1]
        path = tree.path(a, b)
        assert path[0] == a and path[-1] == b

    def test_path_latency_consistent_with_links(self, topo, oracle):
        sources, processors = select_roles(topo, 3, 9, seed=2)
        tree = minimum_latency_spanning_tree(sources + processors, oracle)
        a, b = tree.nodes[0], tree.nodes[-1]
        path = tree.path(a, b)
        total = sum(tree.links[x][y] for x, y in zip(path, path[1:]))
        assert tree.path_latency(a, b) == pytest.approx(total)

    def test_multicast_edges_subset_of_tree(self, topo, oracle):
        sources, processors = select_roles(topo, 3, 9, seed=2)
        tree = minimum_latency_spanning_tree(sources + processors, oracle)
        edges = {(min(u, v), max(u, v)) for u, v, _ in tree.edges()}
        used = tree.multicast_edges(tree.nodes[0], tree.nodes[1:4])
        assert used <= edges

    def test_multicast_to_self_uses_no_edges(self, oracle):
        tree = minimum_latency_spanning_tree([1, 2], oracle)
        assert tree.multicast_edges(1, [1]) == set()

    def test_singleton_tree(self, oracle):
        tree = minimum_latency_spanning_tree([5], oracle)
        assert tree.is_tree() and tree.nodes == [5]

    def test_empty_tree(self, oracle):
        assert minimum_latency_spanning_tree([], oracle).is_tree()

    def test_duplicate_members_deduped(self, oracle):
        tree = minimum_latency_spanning_tree([5, 5, 9], oracle)
        assert sorted(tree.nodes) == [5, 9]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_topologies_always_connected(seed):
    params = TransitStubParams(
        transit_domains=2, transit_nodes=3, stubs_per_transit_node=2, stub_nodes=3
    )
    assert generate_transit_stub(params, seed=seed).is_connected()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), size=st.integers(2, 12))
def test_mst_always_spans_selection(seed, size):
    topo = generate_transit_stub(
        TransitStubParams(transit_domains=2, transit_nodes=3,
                          stubs_per_transit_node=2, stub_nodes=3),
        seed=seed,
    )
    oracle = LatencyOracle(topo)
    import random

    members = random.Random(seed).sample(range(topo.n), size)
    tree = minimum_latency_spanning_tree(members, oracle)
    assert tree.is_tree()
    assert set(tree.nodes) == set(members)
