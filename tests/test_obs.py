"""Tests for the cross-layer observability subsystem (``repro.obs``).

The load-bearing contract: observation must never perturb the
simulation.  The matrix tests run the same seeded scenario with the
observer off, on at full span sampling and on at a coarse sampling
rate, across the batch/scalar x shared/unshared plane combinations and
a fault scenario, and require bit-identical traces, per-query results,
link bytes and CPU costs every time.
"""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Observer,
    SpanRecorder,
    Stopwatch,
    SubsystemProfiler,
    measure,
    set_active,
)
from repro.obs import registry as obs_registry
from repro.obs.cli import main as obs_main
from repro.sim import (
    ChurnParams,
    ScenarioParams,
    SimWorkloadParams,
    run_scenario,
)
from repro.sim.faults import ProcessorCrash


# ---------------------------------------------------------------------------
# instruments in isolation
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a.hits")
        reg.inc("a.hits", 4)
        reg.gauge("b.level", 2.5)
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.observe("c.sizes", v)
        out = reg.to_dict()
        assert out["counters"] == {"a.hits": 5}
        assert out["gauges"] == {"b.level": 2.5}
        hist = out["histograms"]["c.sizes"]
        assert hist["count"] == 4
        assert hist["sum"] == 10.0
        assert hist["min"] == 1.0 and hist["max"] == 4.0
        assert hist["p50"] <= hist["p95"] <= hist["max"]

    def test_to_dict_is_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.to_dict()["counters"]) == ["a", "z"]

    def test_set_active_installs_and_clears(self):
        reg = MetricsRegistry()
        set_active(reg)
        try:
            assert obs_registry.ACTIVE is reg
        finally:
            set_active(None)
        assert obs_registry.ACTIVE is None


class TestSubsystemProfiler:
    def test_exclusive_attribution(self):
        prof = SubsystemProfiler()
        with prof.section("outer"):
            with prof.section("inner"):
                pass
        assert prof.calls == {"outer": 1, "inner": 1}
        # exclusive times: outer excludes inner's elapsed share
        assert prof.totals["outer"] >= 0.0
        assert prof.totals["inner"] >= 0.0

    def test_reentrant_sections_accumulate(self):
        prof = SubsystemProfiler()
        for _ in range(3):
            prof.start("loop")
            prof.stop()
        assert prof.calls["loop"] == 3

    def test_to_dict_with_wall(self):
        prof = SubsystemProfiler()
        with prof.section("a"):
            pass
        out = prof.to_dict(wall_s=1.0)
        assert out["wall_s"] == 1.0
        assert 0.0 <= out["coverage"] <= 1.0


class TestSpanRecorder:
    def test_sampling_rule_is_seq_keyed(self):
        rec = SpanRecorder(sample_every=4)
        assert [s for s in range(12) if rec.wants(s)] == [0, 4, 8]
        assert SpanRecorder(sample_every=1).wants(7)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            SpanRecorder(sample_every=0)

    def test_lookup_is_identity_keyed(self):
        rec = SpanRecorder(sample_every=1)
        tup = {"value": 1}
        span = rec.begin(0, 3, tup, 0.5)
        assert rec.lookup(tup) is span
        assert rec.lookup({"value": 1}) is None  # equal but not the object

    def test_hops_and_annotations_serialize(self):
        rec = SpanRecorder(sample_every=1)
        tup = object()
        span = rec.begin(8, 2, tup, 1.0)
        span.hop("publish", 1.0, source=4)
        span.annotate("migrate", 2.0, src=4, dst=5)
        (out,) = rec.to_list()
        assert out["seq"] == 8 and out["substream"] == 2
        assert out["hops"][0]["kind"] == "publish"
        assert out["annotations"][0]["dst"] == 5
        json.dumps(out)  # JSON-ready


class TestTiming:
    def test_stopwatch_monotone(self):
        watch = Stopwatch()
        a = watch.elapsed()
        b = watch.elapsed()
        assert 0.0 <= a <= b
        watch.restart()
        assert watch.elapsed() < b + 1.0

    def test_measure_best_of(self):
        value, timing = measure(lambda: 42, repeat=3)
        assert value == 42
        assert timing.repeat == 3
        assert timing.best <= timing.mean


# ---------------------------------------------------------------------------
# the no-perturbation matrix
# ---------------------------------------------------------------------------
def _workload(use_sharing: bool) -> SimWorkloadParams:
    # a small substream pool on the shared plane forces real overlap so
    # merged groups (and the p^2 carve path) actually form
    return SimWorkloadParams(
        num_substreams=40,
        num_queries=24,
        pool_substreams=8 if use_sharing else None,
    )


def _scenario(use_batches: bool, use_sharing: bool, faults: bool = False):
    kwargs = dict(
        duration=10.0,
        sample_interval=4.0,
        adapt_interval=8.0,
        initial_placement="skewed",
        churn=ChurnParams(arrival_rate=0.4, mean_lifetime=8.0),
        use_batches=use_batches,
        use_sharing=use_sharing,
    )
    if faults:
        kwargs.update(
            faults=(ProcessorCrash(at=5.0),), checkpoint_interval=2.5
        )
    return ScenarioParams(**kwargs)


def _digest(report) -> str:
    return json.dumps(
        {
            "trace": report.trace.to_dict(),
            "results": {str(k): v for k, v in report.results.items()},
            "link_bytes": sorted(
                (list(k), v) for k, v in report.link_bytes.items()
            ),
            "cpu_costs": {str(k): v for k, v in report.cpu_costs.items()},
        },
        sort_keys=True,
    )


class TestNoPerturbation:
    @pytest.mark.parametrize("use_batches", [True, False])
    @pytest.mark.parametrize("use_sharing", [True, False])
    def test_off_on_sampled_identical(self, use_batches, use_sharing):
        params = _scenario(use_batches, use_sharing)
        workload = _workload(use_sharing)

        def run(observer=None):
            return run_scenario(
                seed=11, workload=workload, scenario=params,
                record=True, observer=observer,
            )

        base = _digest(run())
        full = Observer(span_sample_every=1)
        assert _digest(run(observer=full)) == base
        sparse = Observer(span_sample_every=16)
        assert _digest(run(observer=sparse)) == base
        # full sampling traced every emitted tuple; 1/16 strictly fewer
        assert len(full.spans.to_list()) > len(sparse.spans.to_list()) > 0
        # the active-registry global never leaks past the run
        assert obs_registry.ACTIVE is None

    def test_fault_plane_identical(self):
        params = _scenario(True, False, faults=True)
        workload = _workload(False)

        def run(observer=None):
            return run_scenario(
                seed=3, workload=workload, scenario=params,
                record=True, observer=observer,
            )

        base = _digest(run())
        obs = Observer(span_sample_every=1)
        watched = run(observer=obs)
        assert _digest(watched) == base
        assert any(e["kind"] == "crash" for e in watched.fault_log)
        counters = obs.registry.to_dict()["counters"]
        assert counters["recovery.crash_recoveries"] >= 1
        assert counters["recovery.checkpoints"] > 0

    def test_observed_spans_are_deterministic(self):
        params = _scenario(True, False)
        workload = _workload(False)
        exports = []
        for _ in range(2):
            obs = Observer(span_sample_every=8)
            run_scenario(
                seed=11, workload=workload, scenario=params, observer=obs
            )
            exports.append(obs.spans.to_list())
        assert exports[0] == exports[1]


# ---------------------------------------------------------------------------
# observer export + CLI
# ---------------------------------------------------------------------------
class TestObserverExport:
    def _observed(self):
        obs = Observer(span_sample_every=8)
        run_scenario(
            seed=11, workload=_workload(False),
            scenario=_scenario(True, False), observer=obs,
        )
        return obs

    def test_export_envelope(self):
        obs = self._observed()
        out = obs.export()
        assert out["schema"] == "cosmos-obs/1"
        assert out["seed"] == 11
        assert out["wall_s"] > 0.0
        assert out["spans"] and out["metrics"]["counters"]
        assert out["profile"]["coverage"] > 0.5
        assert out["engines"] and out["brokers"] and out["links"]
        # per-layer counters from every instrumented subsystem
        counters = out["metrics"]["counters"]
        assert counters["broker.advertisements"] > 0
        assert counters["broker.index_probes"] > 0
        assert counters["opt.insertions"] > 0
        gauges = out["metrics"]["gauges"]
        assert gauges["network.total_link_bytes"] > 0
        assert gauges["broker.total_delivered"] > 0
        span = out["spans"][0]
        kinds = [h["kind"] for h in span["hops"]]
        assert kinds[0] == "publish"
        assert "sink" in kinds or "engine" in kinds

    def test_disabled_instruments_export_none(self):
        obs = Observer(span_sample_every=0, metrics=False, profile=False)
        run_scenario(
            seed=11, workload=_workload(False),
            scenario=_scenario(True, False), observer=obs,
        )
        out = obs.export()
        assert out["spans"] is None
        assert out["metrics"] is None
        assert out["profile"] is None

    def test_cli_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "OBS.json")
        obs = self._observed()
        obs.write(path)
        assert obs_main(["summary", path]) == 0
        assert "spans" in capsys.readouterr().out
        assert obs_main(["metrics", path, "--like", "broker.*"]) == 0
        assert "broker.index_probes" in capsys.readouterr().out
        assert obs_main(["profile", path]) == 0
        assert "event_loop" in capsys.readouterr().out
        assert obs_main(["spans", path, "--limit", "2"]) == 0
        assert "publish" in capsys.readouterr().out

    def test_cli_record(self, tmp_path, capsys):
        path = str(tmp_path / "OBS.json")
        rc = obs_main([
            "record", "--out", path, "--seed", "3",
            "--duration", "6.0", "--sample-every", "8",
        ])
        assert rc == 0
        data = json.load(open(path))
        assert data["schema"] == "cosmos-obs/1"
        assert data["seed"] == 3
        assert obs_main(["summary", path]) == 0
        capsys.readouterr()

    def test_cli_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "not-obs"}))
        with pytest.raises(SystemExit):
            obs_main(["summary", str(path)])
